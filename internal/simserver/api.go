// Package simserver serves HiDISC simulations over HTTP: a JSON job
// API in front of experiments.Runner with the three mechanisms a
// simulation service needs to survive production traffic:
//
//   - a content-addressed result cache keyed by the canonical
//     experiments.Job.Key() hash (simulations are deterministic, so a
//     key fully identifies its Measurement);
//   - singleflight deduplication, so concurrent identical submissions
//     share one simulation instead of burning a core each;
//   - bounded-queue admission control that answers 429 + Retry-After
//     under overload instead of queueing without bound.
//
// Endpoints:
//
//	POST /v1/jobs     one job  -> JobResponse JSON (or ErrorBody)
//	POST /v1/batch    job list -> NDJSON stream of BatchItem, one line
//	                  per job as it completes (out of order; reassemble
//	                  by Index)
//	GET  /metrics     MetricsSnapshot JSON (counters + throughput)
//	GET  /healthz     liveness; 503 while draining
//
// Typed simfault errors map to structured HTTP error bodies carrying
// the fault's forensic Snapshot; see the table in DESIGN.md §"Service
// layer". The package uses only the standard library.
package simserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hidisc/internal/experiments"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/simfault"
	"hidisc/internal/workloads"
)

// JobRequest is one simulation submission. Workload and Arch are
// required; the hierarchy defaults to the paper's Table 1 and the
// scale to the server's default.
type JobRequest struct {
	Workload string       `json:"workload"`
	Arch     machine.Arch `json:"arch"`
	// Hier overrides the memory hierarchy; fields left unset fall back
	// to the Table 1 defaults (the object is decoded over them), so
	// {"l2":{...},"memLatency":40} tweaks latencies only. Kept raw to
	// make that merge semantic possible in one decode pass; build it
	// with HierJSON when submitting a full config.
	Hier json.RawMessage `json:"hier,omitempty"`
	// Scale is "test" or "paper"; empty means the server default.
	Scale string `json:"scale,omitempty"`
	// TimeoutMs bounds this job's simulation wall time; 0 means the
	// server default. The cap is enforced through the machine's
	// RunContext cancellation path and surfaces as a timeout fault.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Fault, when set, runs the job under a deterministic fault
	// injector. Faulted jobs bypass the cache and dedup layers: a
	// perturbation is not part of the content key.
	Fault *simfault.Injector `json:"fault,omitempty"`
}

// CanonicalJob resolves a request into the canonical experiments.Job
// it denotes: the hierarchy decoded over the Table 1 defaults and
// validated, the architecture name checked, and the scale resolved
// against def. This is the single place a JobRequest becomes
// content-addressable — the server's execute path and the cluster
// coordinator's ring routing both use it, so a job's Key() is
// guaranteed to agree across the fleet. Errors are request-shaped
// (map them to 400).
func (jr JobRequest) CanonicalJob(def workloads.Scale) (experiments.Job, error) {
	hier := mem.DefaultHierConfig()
	if len(jr.Hier) > 0 {
		if err := json.Unmarshal(jr.Hier, &hier); err != nil {
			return experiments.Job{}, fmt.Errorf("hier: %w", err)
		}
	}
	if err := hier.Validate(); err != nil {
		return experiments.Job{}, err
	}
	if jr.Workload == "" {
		return experiments.Job{}, errors.New("missing workload")
	}
	if jr.Arch == "" {
		return experiments.Job{}, errors.New("missing arch")
	}
	if _, err := machine.ParseArch(string(jr.Arch)); err != nil {
		return experiments.Job{}, err
	}
	scale, err := ParseScale(jr.Scale, def)
	if err != nil {
		return experiments.Job{}, err
	}
	return experiments.Job{Workload: jr.Workload, Arch: jr.Arch, Hier: hier, Scale: scale}, nil
}

// BatchRequest submits many jobs at once. Either Jobs or Matrix is
// set; Matrix names a predefined job list ("fig8").
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs,omitempty"`
	// Matrix expands to a canonical job list: "fig8" is the full
	// Figure 8 benchmark x architecture matrix at the default
	// hierarchy.
	Matrix string `json:"matrix,omitempty"`
	// Scale applies to matrix expansion and to jobs without their own.
	Scale string `json:"scale,omitempty"`
}

// JobResponse answers a successful single-job submission.
type JobResponse struct {
	// Key is the job's canonical content hash (the cache key).
	Key string `json:"key"`
	// Cached is true when the measurement came from the in-memory
	// result cache; Stored when it came from the durable result store
	// (the system of record) below it.
	Cached bool `json:"cached,omitempty"`
	Stored bool `json:"stored,omitempty"`
	// Deduped is true when this submission shared a concurrent
	// identical simulation instead of starting its own.
	Deduped bool `json:"deduped,omitempty"`
	// Measurement is the experiments.Measurement encoded verbatim; kept
	// raw so clients can check byte-identity against a local run.
	Measurement json.RawMessage `json:"measurement"`
}

// HierJSON encodes a hierarchy for JobRequest.Hier.
func HierJSON(h mem.HierConfig) json.RawMessage {
	data, err := json.Marshal(h)
	if err != nil {
		panic(err) // HierConfig is plain data; cannot fail
	}
	return data
}

// Decode unpacks the raw measurement.
func (r JobResponse) Decode() (experiments.Measurement, error) {
	var m experiments.Measurement
	err := json.Unmarshal(r.Measurement, &m)
	return m, err
}

// BatchItem is one NDJSON line of a batch response: the outcome of the
// job at Index in the submitted list. Exactly one of Measurement and
// Error is set.
type BatchItem struct {
	Index       int             `json:"index"`
	Key         string          `json:"key,omitempty"`
	Cached      bool            `json:"cached,omitempty"`
	Stored      bool            `json:"stored,omitempty"`
	Deduped     bool            `json:"deduped,omitempty"`
	Measurement json.RawMessage `json:"measurement,omitempty"`
	Error       *WireError      `json:"error,omitempty"`
}

// Decode unpacks the raw measurement.
func (it BatchItem) Decode() (experiments.Measurement, error) {
	var m experiments.Measurement
	err := json.Unmarshal(it.Measurement, &m)
	return m, err
}

// WireError is the structured error representation: the fault kind (or
// a request-level kind), a message, the HTTP status the error maps to,
// and — for simulation faults — the machine snapshot at fault time, so
// the forensics that -dump-on-fault writes locally are downloadable
// from the service.
type WireError struct {
	Status  int    `json:"status"`
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// RequestID echoes the X-Request-Id the server assigned, so a
	// failure can be correlated with the server's structured logs.
	RequestID string          `json:"requestId,omitempty"`
	Snapshot  json.RawMessage `json:"snapshot,omitempty"`
}

func (e *WireError) Error() string {
	return fmt.Sprintf("%s (HTTP %d): %s", e.Kind, e.Status, e.Message)
}

// ErrorBody is the top-level JSON shape of every non-2xx response.
type ErrorBody struct {
	Err WireError `json:"error"`
}

// Request-level error kinds (simulation faults use simfault's kinds).
const (
	KindBadRequest = "bad-request"
	KindOverloaded = "overloaded"
	KindDraining   = "draining"
	KindInternal   = "internal"
)

// wireError converts any job-execution error into its wire shape.
// Typed simulation faults keep their kind and snapshot; the status
// encodes whose fault it was: 400 for malformed submissions, 422 for
// jobs whose simulation wedged (deadlock, cycle limit — properties of
// the submitted content), 504 for jobs cut off by their time budget,
// 500 for violated simulator invariants.
func wireError(err error) WireError {
	we := WireError{Status: http.StatusInternalServerError, Kind: KindInternal, Message: err.Error()}
	if kind, ok := simfault.KindOf(err); ok {
		we.Kind = string(kind)
		switch kind {
		case simfault.KindDeadlock, simfault.KindCycleLimit:
			we.Status = http.StatusUnprocessableEntity
		case simfault.KindTimeout:
			we.Status = http.StatusGatewayTimeout
		case simfault.KindInvariant:
			we.Status = http.StatusInternalServerError
		}
		if snap := simfault.SnapshotOf(err); snap != nil {
			if data, jerr := json.Marshal(snap); jerr == nil {
				we.Snapshot = data
			}
		}
		return we
	}
	// Everything else the runner reports before a machine is built —
	// unknown workloads, bad architectures, assembly errors — is a
	// property of the request, not the server.
	we.Status = http.StatusBadRequest
	we.Kind = KindBadRequest
	return we
}

// ParseScale resolves a wire scale name against a default.
func ParseScale(s string, def workloads.Scale) (workloads.Scale, error) {
	switch s {
	case "":
		return def, nil
	case "test":
		return workloads.ScaleTest, nil
	case "paper":
		return workloads.ScalePaper, nil
	}
	return def, fmt.Errorf("unknown scale %q (want \"test\" or \"paper\")", s)
}

// ScaleName is the wire name of a workload scale.
func ScaleName(s workloads.Scale) string {
	if s == workloads.ScalePaper {
		return "paper"
	}
	return "test"
}

// MetricsSnapshot is the GET /metrics payload.
type MetricsSnapshot struct {
	// Admission counters. Accepted counts jobs admitted past the
	// bounded queue; Rejected counts 429s; Deduped counts submissions
	// that shared another in-flight simulation; CacheHits counts
	// submissions answered from the result cache without simulating.
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Deduped   int64 `json:"deduped"`
	CacheHits int64 `json:"cacheHits"`
	// Completed / Failed count finished jobs by outcome.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// InFlight is jobs admitted and not yet finished (running or
	// queued); CacheEntries is the current result-cache population.
	InFlight     int64 `json:"inFlight"`
	CacheEntries int   `json:"cacheEntries"`
	// Workers and Queue echo the admission configuration; Capacity is
	// their sum — the most jobs this server admits at once. A cluster
	// coordinator learns a worker's contribution to fleet capacity
	// from these.
	Workers  int `json:"workers"`
	Queue    int `json:"queue"`
	Capacity int `json:"capacity"`
	// Store describes the durable system-of-record tier.
	Store StoreMetrics `json:"store"`
	// Aggregate simulation throughput since the server started, via
	// stats.Throughput over the runners' SimTotals.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	SimCycles     int64   `json:"simCycles"`
	SimInsts      int64   `json:"simInsts"`
	MCyclesPerSec float64 `json:"mcyclesPerSec"`
	SimMIPS       float64 `json:"simMIPS"`
	Throughput    string  `json:"throughput"`
	// Runtime is this process's Go runtime introspection snapshot.
	// When the coordinator merges worker snapshots it does NOT sum
	// these — the merged view reports the coordinator's own runtime,
	// and per-worker values live in the per-worker snapshots.
	Runtime RuntimeMetrics `json:"runtime"`
}

// RuntimeMetrics is the Go runtime introspection slice of the metrics
// payload: scheduler and heap health for the process serving the
// endpoint.
type RuntimeMetrics struct {
	Goroutines     int    `json:"goroutines"`
	HeapInuseBytes uint64 `json:"heapInuseBytes"`
	GCPauseTotalNs uint64 `json:"gcPauseTotalNs"`
	GCCycles       uint32 `json:"gcCycles"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
}

// StoreMetrics is the system-of-record slice of the metrics payload.
// State is "off" (no -store), "ok", or "degraded" (a store read/write
// failed since startup; serving continues from the LRU and by
// re-simulating). The Recovered* fields report what open-time recovery
// found in the log: RecoveredRecords counts records proven valid by
// the CRC scan, and a true TornTail means a torn write from a crash
// mid-append was truncated away (TruncatedBytes of it).
type StoreMetrics struct {
	State            string `json:"state"`
	Hits             int64  `json:"hits"`
	Misses           int64  `json:"misses"`
	Puts             int64  `json:"puts"`
	Errors           int64  `json:"errors"`
	Records          int    `json:"records"`
	RecoveredRecords int    `json:"recoveredRecords"`
	TornTail         bool   `json:"tornTail"`
	TruncatedBytes   int64  `json:"truncatedBytes"`
}

// retryAfter estimates how long a rejected client should back off:
// the queue's worth of work divided by the worker pool, from the
// server's moving average of job wall time, clamped to [1s, 60s] and
// rounded up to whole seconds (the Retry-After header unit).
func retryAfter(queued int, workers int, avgJob time.Duration) int {
	if avgJob <= 0 {
		avgJob = time.Second
	}
	est := time.Duration(queued/max(workers, 1)+1) * avgJob
	secs := int((est + time.Second - 1) / time.Second)
	return min(max(secs, 1), 60)
}
