package simserver

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// histogram is a fixed-bucket latency histogram with lock-free
// observation, rendered in the Prometheus exposition format. Bounds are
// upper bucket edges in seconds; an implicit +Inf bucket catches the
// tail. Sum is kept in integer nanoseconds so Observe stays a pair of
// atomic adds.
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sumNs  atomic.Int64
	total  atomic.Int64
}

// jobLatencyBounds covers simulated-job wall times from sub-millisecond
// test-scale runs to minute-long paper-scale sweeps.
var jobLatencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// queueWaitBounds covers admission-queue waits: usually ~0, up to the
// Retry-After ceiling under load.
var queueWaitBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 5, 30,
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.total.Add(1)
}

// write renders the histogram in exposition format under the given
// metric name. Bucket counts are cumulative per the format.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(w, "%s_count %d\n", name, h.total.Load())
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

func boolGauge(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writePrometheus renders the full metric set — the same counters the
// JSON MetricsSnapshot reports, plus the two latency histograms — in
// the Prometheus text exposition format (version 0.0.4).
func (s *Server) writePrometheus(w io.Writer) {
	m := s.Metrics()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
	}
	counter("hidisc_jobs_accepted_total", "Jobs admitted past the bounded queue.", m.Accepted)
	counter("hidisc_jobs_rejected_total", "Submissions answered 429 by admission control.", m.Rejected)
	counter("hidisc_jobs_deduped_total", "Submissions that shared another in-flight simulation.", m.Deduped)
	counter("hidisc_jobs_cache_hits_total", "Submissions answered from the result cache.", m.CacheHits)
	counter("hidisc_jobs_completed_total", "Jobs that finished successfully.", m.Completed)
	counter("hidisc_jobs_failed_total", "Jobs that finished with a fault.", m.Failed)
	counter("hidisc_sim_cycles_total", "Machine cycles simulated since startup.", m.SimCycles)
	counter("hidisc_sim_insts_total", "Instructions committed by simulations since startup.", m.SimInsts)
	counter("hidisc_store_hits_total", "Submissions answered from the durable result store.", m.Store.Hits)
	counter("hidisc_store_misses_total", "Store lookups that fell through to simulation.", m.Store.Misses)
	counter("hidisc_store_appends_total", "Results appended to the durable result store.", m.Store.Puts)
	counter("hidisc_store_errors_total", "Store reads/writes that failed (tier degraded).", m.Store.Errors)
	counter("hidisc_store_recovered_records_total", "Records proven valid by open-time log recovery.", int64(m.Store.RecoveredRecords))
	counter("hidisc_store_truncated_bytes_total", "Torn-tail bytes truncated by open-time log recovery.", m.Store.TruncatedBytes)
	gauge("hidisc_jobs_in_flight", "Jobs admitted and not yet finished.", strconv.FormatInt(m.InFlight, 10))
	gauge("hidisc_cache_entries", "Result-cache population.", strconv.Itoa(m.CacheEntries))
	gauge("hidisc_store_records", "Records in the durable result store.", strconv.Itoa(m.Store.Records))
	gauge("hidisc_store_degraded", "1 when the store tier has seen an error, else 0 (absent store: 0).", boolGauge(m.Store.State == "degraded"))
	gauge("hidisc_uptime_seconds", "Seconds since the server started.", formatFloat(m.UptimeSeconds))
	WriteRuntimePrometheus(w, m.Runtime)
	s.jobSeconds.write(w, "hidisc_job_seconds", "Wall time of executed simulation jobs.")
	s.queueWaitSeconds.write(w, "hidisc_job_queue_wait_seconds", "Time jobs waited for a worker slot.")
}

// WriteRuntimePrometheus renders the Go runtime introspection gauges —
// exported so the cluster coordinator's exposition reports the same
// metric names for its own process. The values come from the same
// RuntimeMetrics snapshot the JSON view embeds, so the two views
// always agree.
func WriteRuntimePrometheus(w io.Writer, rt RuntimeMetrics) {
	gauge := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("hidisc_go_goroutines", "Live goroutines in this process.", strconv.Itoa(rt.Goroutines))
	gauge("hidisc_go_heap_inuse_bytes", "Heap bytes in in-use spans.", strconv.FormatUint(rt.HeapInuseBytes, 10))
	gauge("hidisc_go_gomaxprocs", "Scheduler parallelism (GOMAXPROCS).", strconv.Itoa(rt.GOMAXPROCS))
	counter("hidisc_go_gc_pause_ns_total", "Cumulative stop-the-world GC pause time.", int64(rt.GCPauseTotalNs))
	counter("hidisc_go_gc_cycles_total", "Completed GC cycles.", int64(rt.GCCycles))
}
