package simserver

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"hidisc/internal/tracing"
)

// ctxKey is the private context-key namespace.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// RequestIDFrom returns the request ID the observability middleware
// assigned, or "" outside a request context.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// ContextWithRequestID attaches a request ID to ctx. The coordinator
// uses it to thread its assigned ID through simclient into the
// forwarded request's X-Request-Id header, so one submission logs
// under one ID on both hops.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// statusWriter captures the response status for the access log while
// forwarding the Flusher capability the batch NDJSON stream needs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// tracedPath limits span creation to the data plane: tracing the
// trace/metrics/health endpoints themselves would fill the ring with
// scrape noise.
func tracedPath(p string) bool { return p == "/v1/jobs" || p == "/v1/batch" }

// withObservability assigns each request an ID — returned in the
// X-Request-Id header, threaded through the context into job execution
// and error bodies — and emits one structured access-log line per
// request. A request that already carries an X-Request-Id (one a
// coordinator assigned before forwarding) keeps it, so the fleet's
// logs correlate end to end.
//
// With tracing configured it also opens the request-root span,
// adopting the caller's traceparent header — a job forwarded by the
// coordinator parents its worker-side span tree under the coordinator
// attempt that sent it. Without a tracer (or for a sampled-out
// traceparent) span is nil and every downstream site costs one branch.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
		var span *tracing.Span
		if tracedPath(r.URL.Path) {
			span = s.tracer.Root("serve "+r.Method+" "+r.URL.Path, r.Header.Get("traceparent"), id)
			ctx = tracing.ContextWithSpan(ctx, span)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.SetAttr("status", strconv.Itoa(sw.status))
		span.End()
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("requestId", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", time.Since(t0).Round(time.Microsecond)),
		)
	})
}

// discardLogger is the default when Config.Logger is nil: structured
// calls stay cheap and tests stay quiet. (slog.DiscardHandler needs a
// newer toolchain than go.mod promises.)
func discardLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}
