package simserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/resultstore"
	"hidisc/internal/simclient"
	"hidisc/internal/simfault"
	"hidisc/internal/simserver"
)

// storeConfig is testConfig plus an open result store in dir.
func storeConfig(t *testing.T, dir string) simserver.Config {
	t.Helper()
	st, _, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Store = st
	return cfg
}

// TestStoreServesAcrossRestart is the system-of-record contract: a
// second server generation over the same store directory must answer
// every previously completed job from the store, byte-identical,
// without simulating anything.
func TestStoreServesAcrossRestart(t *testing.T) {
	jobs, want := localFig8(t)
	dir := t.TempDir()
	ctx := context.Background()

	// Generation 1 simulates the whole matrix and persists it.
	s1, c1 := newTestServer(t, storeConfig(t, dir))
	br := simserver.BatchRequest{Matrix: "fig8", Scale: "test"}
	items, errs, err := c1.Batch(ctx, br)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("gen1 job %d: %v", i, e)
		}
	}
	m1 := s1.Metrics()
	if m1.Store.Puts != int64(len(jobs)) {
		t.Fatalf("gen1 store puts = %d, want %d", m1.Store.Puts, len(jobs))
	}
	if m1.Store.State != "ok" {
		t.Fatalf("gen1 store state %q, want ok", m1.Store.State)
	}
	if err := s1.CloseStore(); err != nil {
		t.Fatal(err)
	}
	// Idempotent: the second close (a racing shutdown path) is a no-op.
	if err := s1.CloseStore(); err != nil {
		t.Fatalf("second CloseStore: %v", err)
	}

	// Generation 2: a fresh process image (new server, new empty LRU)
	// over the same directory.
	s2, c2 := newTestServer(t, storeConfig(t, dir))
	items2, errs2, err := c2.Batch(ctx, br)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items2 {
		if errs2[i] != nil {
			t.Fatalf("gen2 job %d: %v", i, errs2[i])
		}
		if !it.Stored && !it.Cached {
			t.Errorf("gen2 job %d (%s on %s) was not served from the store",
				i, jobs[i].Workload, jobs[i].Arch)
		}
		if !bytes.Equal(it.Measurement, want[i]) {
			t.Errorf("gen2 job %d differs from the local reference", i)
		}
		if !bytes.Equal(it.Measurement, items[i].Measurement) {
			t.Errorf("gen2 job %d differs from gen1's response", i)
		}
	}
	m2 := s2.Metrics()
	if m2.Completed != 0 {
		t.Errorf("gen2 re-simulated %d jobs; the store should have served all of them", m2.Completed)
	}
	if m2.Store.Hits == 0 || m2.Store.Hits+m2.CacheHits != int64(len(jobs)) {
		t.Errorf("gen2 storeHits=%d cacheHits=%d, want them to cover all %d jobs",
			m2.Store.Hits, m2.CacheHits, len(jobs))
	}
	if m2.Store.RecoveredRecords != len(jobs) {
		t.Errorf("gen2 recovered %d records, want %d", m2.Store.RecoveredRecords, len(jobs))
	}
}

// TestHealthzStoreState pins the liveness body's store field: "off"
// without a store, "ok" with one, "degraded" after the store tier sees
// an error — while the job itself still succeeds by re-simulating.
func TestHealthzStoreState(t *testing.T) {
	healthz := func(t *testing.T, url string) (int, map[string]string) {
		t.Helper()
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		out := map[string]string{}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("healthz body %q: %v", body, err)
		}
		return resp.StatusCode, out
	}

	t.Run("off", func(t *testing.T) {
		_, url := rawTestServer(t, testConfig())
		code, body := healthz(t, url)
		if code != http.StatusOK || body["store"] != "off" {
			t.Fatalf("healthz = %d %v, want 200 store=off", code, body)
		}
	})

	t.Run("ok then degraded", func(t *testing.T) {
		dir := t.TempDir()
		// A one-entry LRU so a second job evicts the first: the repeat
		// lookup must then reach the store and find the bitrot.
		cfg := storeConfig(t, dir)
		cfg.CacheEntries = 1
		s, url := rawTestServer(t, cfg)
		c := simclient.New(url)
		if code, body := healthz(t, url); code != http.StatusOK || body["store"] != "ok" {
			t.Fatalf("healthz = %d %v, want 200 store=ok", code, body)
		}

		// Complete one job so a record exists, then rot it on disk
		// behind the open store.
		ctx := context.Background()
		jr := simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC, Scale: "test"}
		first, err := c.Run(ctx, jr)
		if err != nil {
			t.Fatal(err)
		}
		logPath := filepath.Join(dir, "results.log")
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		i := bytes.Index(data, []byte(`"Workload"`))
		if i < 0 {
			t.Fatal("encoded measurement not found in log")
		}
		f, err := os.OpenFile(logPath, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff}, int64(i)); err != nil {
			t.Fatal(err)
		}
		f.Close()

		// Evict the rotten key from the LRU, then resubmit it: the
		// store read fails its CRC check, the tier degrades, and the
		// job still succeeds by re-simulating.
		if _, err := c.Run(ctx, simserver.JobRequest{Workload: "Pointer", Arch: machine.Superscalar, Scale: "test"}); err != nil {
			t.Fatal(err)
		}
		again, err := c.Run(ctx, jr)
		if err != nil {
			t.Fatalf("job over rotten record must re-simulate, got %v", err)
		}
		if !bytes.Equal(again.Measurement, first.Measurement) {
			t.Error("re-simulated measurement differs from the original")
		}
		if again.Stored || again.Cached {
			t.Errorf("rotten record served as a hit: %+v", again)
		}
		code, body := healthz(t, url)
		if code != http.StatusOK || body["store"] != "degraded" {
			t.Fatalf("healthz after bitrot = %d %v, want 200 store=degraded", code, body)
		}
		m := s.Metrics()
		if m.Store.State != "degraded" || m.Store.Errors == 0 {
			t.Errorf("metrics after bitrot: %+v", m.Store)
		}
	})
}

// TestFaultedJobsBypassStore mirrors the cache-bypass contract: a
// perturbed job must neither read from nor append to the system of
// record.
func TestFaultedJobsBypassStore(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, storeConfig(t, dir))
	ctx := context.Background()
	inj := &simfault.Injector{Seed: 7}
	if _, err := c.Run(ctx, simserver.JobRequest{
		Workload: "Pointer", Arch: machine.HiDISC, Scale: "test", Fault: inj,
	}); err != nil {
		t.Fatalf("faulted job: %v", err)
	}
	m := s.Metrics()
	if m.Store.Puts != 0 || m.Store.Hits != 0 || m.Store.Misses != 0 || m.Store.Records != 0 {
		t.Errorf("faulted job touched the store: %+v", m.Store)
	}
}

// TestStoreClosedMidFlight pins the drain race: a job finishing after
// CloseStore still answers its client and must not mark the tier
// degraded (ErrClosed is an expected shutdown artefact, not damage).
func TestStoreClosedMidFlight(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, storeConfig(t, dir))
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Run(context.Background(), simserver.JobRequest{
		Workload: "Pointer", Arch: machine.Superscalar, Scale: "test",
	})
	if err != nil {
		t.Fatalf("job after store close: %v", err)
	}
	if len(resp.Measurement) == 0 {
		t.Fatal("empty measurement")
	}
	if st := s.Metrics().Store; st.State == "degraded" {
		t.Errorf("ErrClosed degraded the store tier: %+v", st)
	}
}
