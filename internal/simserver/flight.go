package simserver

import (
	"context"

	"sync"

	"hidisc/internal/experiments"
)

// flightGroup is a minimal singleflight (stdlib only — the x/sync
// version is not vendored here): concurrent Do calls with one key
// share the first caller's execution. Unlike a result cache this holds
// entries only while a simulation is in flight; completed results move
// to the LRU cache, so the two layers compose into "at most one
// simulation per key, ever, while the key stays cached".
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when the leader finishes
	m    experiments.Measurement
	enc  []byte // the measurement's canonical JSON encoding
	err  error
	dups int // followers that joined this call
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flightCall{}}
}

// Do executes fn under key, deduplicating concurrent calls: the first
// caller (the leader) runs fn, later callers block until it finishes
// and share its result. shared reports whether this caller was a
// follower. A follower abandons its wait when ctx ends (the leader's
// simulation keeps running — its result is still wanted by the cache).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (experiments.Measurement, []byte, error)) (m experiments.Measurement, enc []byte, err error, shared bool) {
	g.mu.Lock()
	if c, inFlight := g.m[key]; inFlight {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.m, c.enc, c.err, true
		case <-ctx.Done():
			return experiments.Measurement{}, nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.m, c.enc, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.m, c.enc, c.err, false
}

// Waiters returns how many followers are currently blocked on key.
func (g *flightGroup) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}
