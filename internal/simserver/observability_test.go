package simserver_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/simserver"
)

// rawTestServer exposes the underlying httptest server URL for tests
// that need to craft HTTP requests directly (headers, query params).
func rawTestServer(t *testing.T, cfg simserver.Config) (*simserver.Server, string) {
	t.Helper()
	s := simserver.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

func postJob(t *testing.T, url string, jr simserver.JobRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func get(t *testing.T, url string, accept string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// promValues parses a Prometheus text exposition into name -> value
// for plain (un-labelled) samples, and name{le="..."} -> value for
// histogram buckets.
func promValues(t *testing.T, text string) map[string]float64 {
	t.Helper()
	vals := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		vals[name] = v
	}
	return vals
}

// TestMetricsContentNegotiation runs a real job and checks the two
// /metrics views against each other: the Prometheus counters must
// equal the JSON snapshot's, and the job-latency histogram must be
// present, internally consistent, and reflect the executed job.
func TestMetricsContentNegotiation(t *testing.T) {
	_, url := rawTestServer(t, testConfig())

	resp := postJob(t, url, simserver.JobRequest{Workload: "Pointer", Arch: machine.CPAP})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job submission: HTTP %d", resp.StatusCode)
	}

	jresp, jbody := get(t, url+"/metrics", "")
	if ct := jresp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("default /metrics Content-Type = %q, want JSON", ct)
	}
	var snap simserver.MetricsSnapshot
	if err := json.Unmarshal([]byte(jbody), &snap); err != nil {
		t.Fatalf("JSON metrics: %v", err)
	}

	presp, pbody := get(t, url+"/metrics", "text/plain")
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("prom /metrics Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	_, qbody := get(t, url+"/metrics?format=prom", "")

	for _, body := range []string{pbody, qbody} {
		vals := promValues(t, body)
		// Counter parity between the two views. The snapshot is taken
		// after the prom fetch, but all counters are settled: the one
		// job completed before the first /metrics request.
		counters := map[string]int64{
			"hidisc_jobs_accepted_total":   snap.Accepted,
			"hidisc_jobs_rejected_total":   snap.Rejected,
			"hidisc_jobs_deduped_total":    snap.Deduped,
			"hidisc_jobs_cache_hits_total": snap.CacheHits,
			"hidisc_jobs_completed_total":  snap.Completed,
			"hidisc_jobs_failed_total":     snap.Failed,
			"hidisc_sim_cycles_total":      snap.SimCycles,
			"hidisc_sim_insts_total":       snap.SimInsts,
			"hidisc_jobs_in_flight":        snap.InFlight,

			"hidisc_store_hits_total":              snap.Store.Hits,
			"hidisc_store_misses_total":            snap.Store.Misses,
			"hidisc_store_appends_total":           snap.Store.Puts,
			"hidisc_store_errors_total":            snap.Store.Errors,
			"hidisc_store_recovered_records_total": int64(snap.Store.RecoveredRecords),
			"hidisc_store_records":                 int64(snap.Store.Records),
		}
		for name, want := range counters {
			got, ok := vals[name]
			if !ok {
				t.Errorf("prom view missing %s", name)
				continue
			}
			if int64(got) != want {
				t.Errorf("%s = %v, want %d (JSON view)", name, got, want)
			}
		}
		if snap.Completed != 1 || snap.SimCycles == 0 {
			t.Errorf("snapshot Completed=%d SimCycles=%d after one job", snap.Completed, snap.SimCycles)
		}
		// Histogram presence and internal consistency.
		for _, h := range []string{"hidisc_job_seconds", "hidisc_job_queue_wait_seconds"} {
			if !strings.Contains(body, "# TYPE "+h+" histogram") {
				t.Errorf("missing # TYPE line for %s", h)
			}
			if !strings.Contains(body, "# HELP "+h+" ") {
				t.Errorf("missing # HELP line for %s", h)
			}
			count, ok := vals[h+"_count"]
			if !ok || count < 1 {
				t.Errorf("%s_count = %v, want >= 1", h, count)
			}
			inf, ok := vals[h+`_bucket{le="+Inf"}`]
			if !ok || inf != count {
				t.Errorf("%s +Inf bucket = %v, want == count %v", h, inf, count)
			}
		}
		if vals["hidisc_job_seconds_sum"] <= 0 {
			t.Errorf("hidisc_job_seconds_sum = %v, want > 0", vals["hidisc_job_seconds_sum"])
		}
		// Bucket counts must be cumulative (non-decreasing) in le order.
		var prev float64
		for _, b := range strings.Split(body, "\n") {
			if !strings.HasPrefix(b, "hidisc_job_seconds_bucket") {
				continue
			}
			_, value, _ := strings.Cut(b, " ")
			v, _ := strconv.ParseFloat(value, 64)
			if v < prev {
				t.Fatalf("bucket counts not cumulative at %q", b)
			}
			prev = v
		}
	}

	if resp, body := get(t, url+"/metrics?format=xml", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: HTTP %d, body %s; want 400", resp.StatusCode, body)
	}
}

// TestRequestIDThreading checks the request-ID contract: every
// response carries X-Request-Id, and error bodies echo the same ID so
// clients can quote it against server logs.
func TestRequestIDThreading(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := testConfig()
	cfg.Logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, url := rawTestServer(t, cfg)

	resp := postJob(t, url, simserver.JobRequest{Workload: "no-such-workload", Arch: machine.CPAP})
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("response missing X-Request-Id header")
	}
	var eb simserver.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Err.RequestID != id {
		t.Errorf("error body requestId %q != header %q", eb.Err.RequestID, id)
	}
	if eb.Err.Status != http.StatusBadRequest {
		t.Errorf("unknown workload: status %d, want 400", eb.Err.Status)
	}

	// A successful request gets a different, later ID.
	resp2 := postJob(t, url, simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC})
	id2 := resp2.Header.Get("X-Request-Id")
	if id2 == "" || id2 == id {
		t.Errorf("second request ID %q should be fresh (first was %q)", id2, id)
	}

	// The structured log must carry both the access lines and the job
	// outcome lines, threaded with the same request IDs.
	logs := logBuf.String()
	for _, want := range []string{id, id2, `"msg":"request"`, `"msg":"request error"`, `"msg":"job completed"`} {
		if !strings.Contains(logs, want) {
			t.Errorf("structured log missing %q\nlog:\n%s", want, logs)
		}
	}
}
