package simserver_test

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"hidisc/internal/machine"
	"hidisc/internal/simserver"
	"hidisc/internal/tracing"
)

func tracedConfig() simserver.Config {
	cfg := testConfig()
	cfg.Tracer = tracing.New("hidisc-serve", 1024)
	return cfg
}

// readTraces fetches GET /v1/traces and decodes the NDJSON stream.
func readTraces(t *testing.T, url, requestID string) []tracing.Span {
	t.Helper()
	u := url + "/v1/traces"
	if requestID != "" {
		u += "?request=" + requestID
	}
	resp, body := get(t, u, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("traces Content-Type = %q, want NDJSON", ct)
	}
	var spans []tracing.Span
	dec := json.NewDecoder(strings.NewReader(body))
	for dec.More() {
		var s tracing.Span
		if err := dec.Decode(&s); err != nil {
			t.Fatalf("traces NDJSON: %v", err)
		}
		spans = append(spans, s)
	}
	return spans
}

// spanByName returns the first span with the given name, or nil.
func spanByName(spans []tracing.Span, name string) *tracing.Span {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

// TestTracesEndpoint runs one job and checks the span tree the ring
// serves: the expected lifecycle spans exist, share one trace, and
// every parent pointer resolves inside the tree (no orphans).
func TestTracesEndpoint(t *testing.T) {
	_, url := rawTestServer(t, tracedConfig())

	resp := postJob(t, url, simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job: HTTP %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")

	spans := readTraces(t, url, id)
	root := spanByName(spans, "serve POST /v1/jobs")
	if root == nil {
		t.Fatalf("no request-root span for %s in %d spans", id, len(spans))
	}
	byID := map[string]bool{}
	for _, s := range spans {
		byID[s.SpanID] = true
	}
	for _, name := range []string{"serve.cache.lookup", "serve.flight", "serve.queue.wait", "serve.simulate"} {
		s := spanByName(spans, name)
		if s == nil {
			t.Errorf("missing %s span", name)
			continue
		}
		if s.TraceID != root.TraceID {
			t.Errorf("%s in trace %s, want %s", name, s.TraceID, root.TraceID)
		}
		if s.ParentID == "" || !byID[s.ParentID] {
			t.Errorf("%s orphaned: parent %q not in tree", name, s.ParentID)
		}
		if s.DurationNs < 0 {
			t.Errorf("%s duration %d < 0", name, s.DurationNs)
		}
	}
	// The filter must actually filter.
	if others := readTraces(t, url, "no-such-request"); len(others) != 0 {
		t.Errorf("filter leaked %d spans", len(others))
	}

	// A cached repeat produces a hit-tagged cache span and no simulate.
	resp2 := postJob(t, url, simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC})
	id2 := resp2.Header.Get("X-Request-Id")
	spans2 := readTraces(t, url, id2)
	if cs := spanByName(spans2, "serve.cache.lookup"); cs == nil || cs.Attrs["hit"] != "true" {
		t.Errorf("cached repeat: cache span %+v, want hit=true", cs)
	}
	if spanByName(spans2, "serve.simulate") != nil {
		t.Error("cached repeat ran a simulate span")
	}
}

// TestSlowJobLogMatchesTraces pins the satellite contract: the slow-job
// warning's per-stage durations are read from the spans themselves, so
// the log line and GET /v1/traces agree exactly.
func TestSlowJobLogMatchesTraces(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := tracedConfig()
	cfg.Logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	cfg.SlowJob = time.Nanosecond // everything is slow
	_, url := rawTestServer(t, cfg)

	resp := postJob(t, url, simserver.JobRequest{Workload: "Pointer", Arch: machine.CPAP})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job: HTTP %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")

	var warn map[string]any
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, `"msg":"slow job"`) {
			continue
		}
		if err := json.Unmarshal([]byte(line), &warn); err != nil {
			t.Fatalf("slow-job line undecodable: %v\n%s", err, line)
		}
		break
	}
	if warn == nil {
		t.Fatalf("no slow-job warning logged:\n%s", logBuf.String())
	}
	if warn["requestId"] != id {
		t.Errorf("slow-job requestId %v, want %s", warn["requestId"], id)
	}

	spans := readTraces(t, url, id)
	for logKey, spanName := range map[string]string{
		"queueWaitNs":   "serve.queue.wait",
		"cacheLookupNs": "serve.cache.lookup",
		"simulateNs":    "serve.simulate",
	} {
		s := spanByName(spans, spanName)
		if s == nil {
			t.Errorf("no %s span", spanName)
			continue
		}
		got, ok := warn[logKey].(float64)
		if !ok {
			t.Errorf("slow-job line missing %s", logKey)
			continue
		}
		if int64(got) != s.DurationNs {
			t.Errorf("%s = %d in log, %d in trace — must agree exactly", logKey, int64(got), s.DurationNs)
		}
	}
	// No store configured: the store stages must report zero.
	for _, k := range []string{"storeReadNs", "storeAppendNs"} {
		if v, _ := warn[k].(float64); v != 0 {
			t.Errorf("%s = %v without a store, want 0", k, v)
		}
	}
}

// TestMachineTraceBitIdentity pins the PR 5 contract at the service
// layer: a job simulated with machine-telemetry capture returns a
// measurement byte-identical to the same job without it, and the
// capture lands on the simulate span as a complete Perfetto document
// carrying the span's own ids.
func TestMachineTraceBitIdentity(t *testing.T) {
	job := simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC}

	// Plain server: no tracing at all.
	_, plainURL := rawTestServer(t, testConfig())
	plain := postJob(t, plainURL, job)
	var plainResp simserver.JobResponse
	if err := json.NewDecoder(plain.Body).Decode(&plainResp); err != nil {
		t.Fatal(err)
	}

	// Traced server with machine capture on.
	cfg := tracedConfig()
	cfg.MachineTrace = true
	_, tracedURL := rawTestServer(t, cfg)
	traced := postJob(t, tracedURL, job)
	var tracedResp simserver.JobResponse
	if err := json.NewDecoder(traced.Body).Decode(&tracedResp); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(plainResp.Measurement, tracedResp.Measurement) {
		t.Errorf("measurement differs with machine capture on:\noff: %s\non:  %s",
			plainResp.Measurement, tracedResp.Measurement)
	}
	if plainResp.Key != tracedResp.Key {
		t.Errorf("job key differs: %s vs %s", plainResp.Key, tracedResp.Key)
	}

	id := traced.Header.Get("X-Request-Id")
	ssp := spanByName(readTraces(t, tracedURL, id), "serve.simulate")
	if ssp == nil {
		t.Fatal("no simulate span")
	}
	if len(ssp.Machine) == 0 {
		t.Fatal("simulate span carries no machine document")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ssp.Machine, &doc); err != nil {
		t.Fatalf("machine document invalid: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "span_context" {
			args, _ := ev["args"].(map[string]any)
			if args["traceId"] != ssp.TraceID || args["spanId"] != ssp.SpanID {
				t.Errorf("span_context %v, want trace %s span %s", args, ssp.TraceID, ssp.SpanID)
			}
			found = true
		}
	}
	if !found {
		t.Error("machine document has no span_context metadata event")
	}
}

// TestRuntimeMetricsParity is the view-parity companion to
// TestMetricsContentNegotiation for the runtime introspection
// satellite: the JSON snapshot and the Prometheus exposition must both
// carry the runtime stats, agreeing on the stable value (GOMAXPROCS)
// and both reporting live values for the racy ones.
func TestRuntimeMetricsParity(t *testing.T) {
	_, url := rawTestServer(t, testConfig())

	_, jbody := get(t, url+"/metrics", "")
	var snap simserver.MetricsSnapshot
	if err := json.Unmarshal([]byte(jbody), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runtime.Goroutines <= 0 {
		t.Errorf("JSON goroutines = %d, want > 0", snap.Runtime.Goroutines)
	}
	if snap.Runtime.HeapInuseBytes == 0 {
		t.Error("JSON heapInuseBytes = 0")
	}
	if snap.Runtime.GOMAXPROCS <= 0 {
		t.Errorf("JSON gomaxprocs = %d, want > 0", snap.Runtime.GOMAXPROCS)
	}

	_, pbody := get(t, url+"/metrics", "text/plain")
	vals := promValues(t, pbody)
	// GOMAXPROCS is stable across the two fetches: exact parity.
	if got := vals["hidisc_go_gomaxprocs"]; int(got) != snap.Runtime.GOMAXPROCS {
		t.Errorf("hidisc_go_gomaxprocs = %v, want %d (JSON view)", got, snap.Runtime.GOMAXPROCS)
	}
	// Goroutine count and heap churn between fetches: presence and
	// positivity is the strongest honest assertion.
	for _, name := range []string{"hidisc_go_goroutines", "hidisc_go_heap_inuse_bytes"} {
		if v, ok := vals[name]; !ok || v <= 0 {
			t.Errorf("%s = %v, want present and > 0", name, v)
		}
	}
	for _, name := range []string{"hidisc_go_gc_pause_ns_total", "hidisc_go_gc_cycles_total"} {
		if _, ok := vals[name]; !ok {
			t.Errorf("prom view missing %s", name)
		}
	}
}

// TestTracingOffNoSpans pins the off state: a server without a tracer
// serves an empty /v1/traces body and still answers jobs normally.
func TestTracingOffNoSpans(t *testing.T) {
	_, url := rawTestServer(t, testConfig())
	resp := postJob(t, url, simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job: HTTP %d", resp.StatusCode)
	}
	if spans := readTraces(t, url, ""); len(spans) != 0 {
		t.Errorf("tracing off but %d spans served", len(spans))
	}
}
