package simserver

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU of content-addressed results: job key →
// the canonical JSON encoding of its Measurement. Values are stored
// encoded so cache hits are a copy-free write to the response and so
// every client of one key observes byte-identical payloads.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	enc []byte
}

// newResultCache returns a cache holding at most capacity entries;
// capacity <= 0 disables caching entirely (every Get misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// Get returns the encoded measurement for key, if cached.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).enc, true
}

// Put stores an encoded measurement, evicting the least recently used
// entry when the cache is full.
func (c *resultCache) Put(key string, enc []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).enc = enc
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, enc: enc})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the current population.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
